// Package repro is a Go implementation of the optimal aggregation
// algorithms for middleware of Fagin, Lotem and Naor (PODS 2001): the
// threshold algorithm TA and its variants (TAθ, TAz), the no-random-access
// algorithm NRA, the combined algorithm CA, and the baselines FA (Fagin's
// algorithm), Naive and the max-specialized MaxTopK — together with the
// middleware access model (sorted/random access with costs cS and cR) and
// full access accounting.
//
// A database is m sorted lists over N objects, each object carrying one
// grade per list in [0,1]; a query asks for the k objects with the highest
// overall grade under a monotone aggregation function such as Min or Avg.
//
// Quick start:
//
//	b := repro.NewBuilder(2)
//	b.MustAdd(1, 0.9, 0.3)
//	b.MustAdd(2, 0.5, 0.8)
//	db := b.MustBuild()
//	res, err := repro.TopK(db, repro.Min(2), 1)
//
// The zero-configuration TopK uses TA; Query gives full control over
// algorithm choice, access policy, cost model and approximation.
package repro

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/access"
	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/shard"
)

// Re-exported data-model types.
type (
	// ObjectID identifies an object.
	ObjectID = model.ObjectID
	// Grade is an attribute or overall grade.
	Grade = model.Grade
	// Database is m sorted lists over a common object set.
	Database = model.Database
	// Builder assembles a Database object-by-object.
	Builder = model.Builder
	// AggFunc is a monotone aggregation function.
	AggFunc = agg.Func
	// Result is a completed top-k run with access accounting.
	Result = core.Result
	// Scored is one answer item.
	Scored = core.Scored
	// CostModel carries the sorted/random access costs cS and cR.
	CostModel = access.CostModel
	// Stats is the per-run access accounting.
	Stats = access.Stats
	// ProgressView is the early-stopping callback view.
	ProgressView = core.Progress
	// Retry is the per-query retry policy for transient backend failures.
	Retry = access.Retry
	// ShardStat is one shard's per-query observability record.
	ShardStat = shard.ShardStat
)

// NewBuilder starts a Database builder for m attributes.
func NewBuilder(m int) *Builder { return model.NewBuilder(m) }

// ErrBadQuery is the identity every invalid query or unsupported option
// combination wraps, on the sequential and sharded paths alike: check with
// errors.Is(err, repro.ErrBadQuery).
var ErrBadQuery = core.ErrBadQuery

// ErrBackend is the identity every backend access failure wraps — transient
// or permanent, injected or real: check with errors.Is(err, repro.ErrBackend).
// It is disjoint from ErrBadQuery: a failed backend never looks like a
// malformed query.
var ErrBackend = access.ErrBackend

// ErrListDown wraps ErrBackend and marks a list as permanently lost; the
// retry layer gives up on it immediately instead of backing off.
var ErrListDown = access.ErrListDown

// DefaultRetry is the retry policy a zero Options.Retry resolves to.
var DefaultRetry = access.DefaultRetry

// Re-exported aggregation constructors.
var (
	// Min is fuzzy conjunction (strict, strictly monotone).
	Min = agg.Min
	// Max is fuzzy disjunction.
	Max = agg.Max
	// Sum is the information-retrieval scoring function.
	Sum = agg.Sum
	// Avg is the average (strict, strictly monotone in each argument).
	Avg = agg.Avg
	// Product is the Aksoy–Franklin broadcast scoring function.
	Product = agg.Product
	// Median is the (lower) median.
	Median = agg.Median
	// WeightedSum is Σ wᵢ·xᵢ for fixed non-negative weights.
	WeightedSum = agg.WeightedSum
	// GeometricMean is (Πxᵢ)^(1/m).
	GeometricMean = agg.GeometricMean
)

// AlgorithmName selects the top-k algorithm in Options.
type AlgorithmName string

// Available algorithms.
const (
	// AlgoTA is the threshold algorithm (default; instance optimal for
	// every monotone aggregation among no-wild-guess algorithms).
	AlgoTA AlgorithmName = "TA"
	// AlgoFA is Fagin's algorithm (the paper's baseline).
	AlgoFA AlgorithmName = "FA"
	// AlgoNRA makes no random accesses and returns the top-k objects
	// with grade intervals instead of exact grades.
	AlgoNRA AlgorithmName = "NRA"
	// AlgoCA is the combined algorithm (random-access phase every
	// ⌊cR/cS⌋ depths; optimality ratio independent of cR/cS under the
	// Theorem 8.9/8.10 conditions).
	AlgoCA AlgorithmName = "CA"
	// AlgoNaive scans everything; the ground-truth baseline.
	AlgoNaive AlgorithmName = "Naive"
	// AlgoMaxTopK is the mk-sorted-access specialization for Max.
	AlgoMaxTopK AlgorithmName = "MaxTopK"
)

// Options configures Query.
type Options struct {
	// Algorithm selects the algorithm; empty means AlgoTA (or AlgoNRA
	// automatically when the policy forbids random access).
	Algorithm AlgorithmName
	// Costs is the middleware cost model; zero means cS = cR = 1.
	Costs CostModel
	// Theta > 1 asks TA for a θ-approximation (Section 6.2).
	Theta float64
	// NoRandomAccess forbids random access (search-engine scenario);
	// with the default algorithm this selects NRA. It composes with
	// Shards: the query then runs the sharded no-random-access mode
	// (one resumable NRA worker per shard) and performs zero random
	// accesses.
	NoRandomAccess bool
	// SortedLists, when non-empty, restricts sorted access to these
	// list indices (Section 7's Z); TA then behaves as TAz.
	SortedLists []int
	// Memoize lets TA cache grades (unbounded buffer, fewer repeat
	// random accesses).
	Memoize bool
	// CostAwareTA makes the TA engine cost-adaptive (the paper's CA
	// argument applied to TA's contract): sorted accesses are allocated
	// cheapest-threshold-drop-first (core.CAPlanner) and random accesses
	// are spent one resolution phase every h ≈ cR/cS sorted-access
	// rounds instead of on every encountered object, with h derived from
	// the backends' declared cost models (Options.Costs when the lists
	// declare nothing). Answers carry exact grades and the same
	// true-grade multiset as plain TA; ties at the k-th grade are broken
	// arbitrarily, so tied object sets may differ. Composes with Shards
	// (each shard worker plans its own backends' costs). Requires the TA
	// algorithm with random access: combining it with another Algorithm,
	// NoRandomAccess, or θ-approximation is rejected with ErrBadQuery.
	CostAwareTA bool
	// OnProgress, when non-nil, is invoked by TA and NRA after every
	// sorted access (NRA: every sorted-access round); returning false
	// stops early with the current view.
	OnProgress func(ProgressView) bool
	// Shards, when ≥ 1, partitions the database into that many
	// object-disjoint shards and answers the query with one concurrent
	// worker per shard (the sharded engine; see NewSharded for a
	// reusable handle that partitions only once). Zero (the default)
	// keeps the sequential path; AutoShards (-1) asks the engine to pick
	// the shard count from N, k and GOMAXPROCS; other negative values are
	// rejected with ErrBadQuery.
	//
	// With random access available (the default), workers run TA and the
	// answer is canonical — top k by (grade descending, ObjectID
	// ascending) — and identical for every shard count, including
	// Shards = 1. With NoRandomAccess set (or Algorithm AlgoNRA), each
	// shard runs a resumable NRA worker instead: sorted access only,
	// with the coordinator merging per-shard [W, B] grade intervals and
	// pushing workers past their local halting points until the global
	// intervals separate at rank k. That mode returns the exact top-k
	// *object set* with grade intervals, exactly like sequential NRA.
	//
	// Sharding supports the TA and NRA algorithms; θ-approximation,
	// sorted-access restriction (TAz) and OnProgress are rejected with
	// ErrBadQuery.
	Shards int
	// ShardWorkers bounds how many shard workers run concurrently when
	// Shards > 1; 0 means one goroutine per shard.
	ShardWorkers int
	// Publish selects when sharded no-random-access workers publish their
	// [W, B] interval views to the coordinator: PublishPerRound (strict;
	// the single-shard default, preserving sequential NRA's exact access
	// depth), PublishEveryR (every PublishEvery rounds), or
	// PublishBoundCrossing (the multi-shard default: publish only when
	// the worker's local bounds cross the published global M_k). The
	// answer is identical under every policy — batching trades bounded
	// per-worker overshoot for far fewer coordinator merges. Setting it
	// without the no-random-access mode is rejected with ErrBadQuery.
	Publish PublishPolicy
	// PublishEvery tunes the selected publish policy's round interval
	// (the R of PublishEveryR, default 16, or PublishBoundCrossing's
	// safety valve, default 64); with the default policy a positive value
	// selects PublishEveryR. Negative values are rejected with
	// ErrBadQuery.
	PublishEvery int
	// Backend, when non-nil, wraps every list as a simulated remote
	// backend with the given per-access costs and latency distribution
	// before the query runs — the paper's middleware scenario with the
	// subsystem costs made real. It composes with Shards (each shard's
	// lists are wrapped; the highest-index StragglerShards shards get
	// their costs and latency multiplied by StragglerFactor) and with the
	// sequential path (one logical backend set). Stats.ChargedSorted /
	// ChargedRandom then report what the backends billed.
	Backend *BackendSpec
	// Cache, when non-nil, inserts a bounded page cache + random-access
	// memo between the query and the lists (above Backend when both are
	// set): sharded queries get one cache per shard, sequential queries
	// one cache in total. A cache configured through Options lives for a
	// single Query call — within it, repeated probes and re-read prefixes
	// are served from cache; use NewShardedStack for a persistent engine
	// whose caches are shared across queries.
	Cache *CacheSpec
	// Schedule selects the sharded no-random-access scheduling policy:
	// ScheduleWave (the default) resumes every unresolved shard
	// concurrently; ScheduleCostAware serializes on the shard with the
	// best bound-tightening per unit of expected cost, minimizing charged
	// middleware cost on skewed backend sets. Non-auto values require the
	// sharded no-random-access mode; anything else is rejected with
	// ErrBadQuery.
	Schedule Schedule
	// Fault, when non-nil, wraps every list with a deterministic seeded
	// fault injector (above Backend, below Cache, when those are set):
	// transient failures at the given rate, periodic outage bursts, and
	// optionally one permanently dead list. Transient failures are retried
	// per Retry; a list lost for good fails the sequential query with an
	// error wrapping ErrBackend, while a sharded query degrades to a
	// θ-approximation over the surviving shards (see MinTheta). Requires a
	// failure-aware algorithm — TA (plain or cost-aware), NRA, CA, sharded
	// or not; FA, Naive and MaxTopK reject it with ErrBadQuery.
	Fault *FaultSpec
	// Retry is the retry policy for transient backend failures (errors
	// wrapping ErrBackend, except ErrListDown): capped exponential backoff
	// with deterministic jitter, bounded per access by MaxAttempts and per
	// query by Budget. The zero value resolves to DefaultRetry; set
	// MaxAttempts to 1 to disable retries.
	Retry Retry
	// MinTheta is the weakest θ-approximation guarantee accepted when a
	// sharded query loses shards permanently and degrades (Section 6.2):
	// 0 accepts any finite certified θ; a value ≥ 1 fails the query when
	// the survivors certify only θ > MinTheta; values in (0, 1) are
	// rejected with ErrBadQuery. Requires Shards — the sequential path has
	// no surviving shards to degrade over.
	MinTheta float64
	// Hedge lets the serialized sharded no-random-access schedulers
	// (cost-aware, adaptive) hedge a straggling shard resume; see
	// shard.Options.Hedge. Rejected with ErrBadQuery elsewhere.
	Hedge bool
}

// FaultSpec configures the deterministic fault injector; see Options.Fault.
type FaultSpec struct {
	// Rate is the per-access probability of a transient failure, in [0, 1].
	Rate float64
	// BurstEvery opens an outage window every BurstEvery-th access on each
	// list; the window's BurstLen consecutive accesses (default 4) all fail
	// transiently. Zero disables bursts.
	BurstEvery int
	BurstLen   int
	// DeadList, when positive, kills list number DeadList (1-based) for
	// good: on the sequential path the logical list of that index, on the
	// sharded path that list of the highest-index shard — which loses
	// exactly one shard and exercises θ-degradation. Zero kills nothing.
	DeadList int
	// Hang stalls each injected failure for this long before returning it,
	// simulating a hung backend.
	Hang time.Duration
	// Seed drives the per-list failure schedules deterministically.
	Seed uint64
}

// validate rejects malformed fault specs.
func (f *FaultSpec) validate() error {
	if f.Rate < 0 || f.Rate > 1 {
		return fmt.Errorf("%w: fault rate must be in [0, 1], got %g", ErrBadQuery, f.Rate)
	}
	if f.BurstEvery < 0 || f.BurstLen < 0 {
		return fmt.Errorf("%w: fault burst configuration must be non-negative, got every=%d len=%d", ErrBadQuery, f.BurstEvery, f.BurstLen)
	}
	if f.DeadList < 0 {
		return fmt.Errorf("%w: DeadList must be non-negative (1-based; 0 kills nothing), got %d", ErrBadQuery, f.DeadList)
	}
	if f.Hang < 0 {
		return fmt.Errorf("%w: fault hang must be non-negative, got %v", ErrBadQuery, f.Hang)
	}
	return nil
}

// plan resolves the spec into list i's fault plan. Each list gets a
// decorrelated seed; dead marks this list permanently down.
func (f *FaultSpec) plan(seed uint64, dead bool) access.FaultPlan {
	return access.FaultPlan{
		Seed:       f.Seed ^ (seed+1)*0x9e3779b97f4a7c15,
		Rate:       f.Rate,
		BurstEvery: f.BurstEvery,
		BurstLen:   f.BurstLen,
		Dead:       dead,
		Hang:       f.Hang,
	}
}

// AutoShards is the Options.Shards sentinel asking the engine to pick the
// shard count itself: P = shard.AutoShards(N, k, GOMAXPROCS), the E20
// cost-model heuristic (per-worker depth shrinks ≈ 1/P until shards run
// out of cores or objects). Zero still means the plain sequential path —
// auto-sharding must be opted into because the sharded path rejects
// sequential-only options (OnProgress, Theta, TAz).
const AutoShards = -1

// BackendSpec configures simulated remote backends; see Options.Backend.
// The zero value of each field takes the documented default.
type BackendSpec struct {
	// SortedCost and RandomCost are the per-access charges (the paper's
	// per-subsystem cS and cR). Both zero means "inherit Options.Costs".
	SortedCost float64
	RandomCost float64
	// Latency is the base simulated latency per access (both kinds); zero
	// injects none. Jitter spreads it uniformly over [1−J, 1+J]·Latency,
	// deterministically from Seed.
	Latency time.Duration
	Jitter  float64
	Seed    uint64
	// StragglerShards marks the highest-index shards as stragglers whose
	// costs and latency are multiplied by StragglerFactor (default 8) —
	// the skewed backend set a latency-aware scheduler exploits. Ignored
	// on the sequential path.
	StragglerShards int
	StragglerFactor float64
	// BatchRTT switches batched sorted reads to the batch round-trip
	// latency model: one full latency draw per batch plus a per-entry
	// marginal of BatchMarginal × Latency (default 0.1) for every entry
	// after the first, instead of a full independent draw per entry.
	// Single-entry accesses are unchanged. See access.Latency.BatchRTT.
	BatchRTT      bool
	BatchMarginal float64
}

// CacheSpec configures the per-shard page cache; see Options.Cache. Zero
// fields take access.CacheConfig's defaults (64-entry pages, 256 hot
// pages, a cold tier of 4× the hot pages charging 0.1 of the declared
// cost per hit, 4096 memoized grades).
type CacheSpec struct {
	PageSize int
	// Pages bounds the hot tier (hits free). ColdPages bounds the
	// TinyLFU-admission-controlled cold tier behind it: zero means 4×
	// Pages, negative disables the cold tier (flat single-LRU cache).
	// ColdHitCost is the fraction of the backend's declared cost a
	// cold-tier hit charges (zero means 0.1, negative means free).
	Pages       int
	ColdPages   int
	ColdHitCost float64
	Memo        int
}

// CacheStats is a cache's accounting snapshot — per-tier hits, misses,
// evictions and admission decisions; see access.CacheStats. Sharded
// engines report one per shard through Sharded.CacheStats and
// ShardOptions.OnShardStats.
type CacheStats = access.CacheStats

// Schedule selects the sharded no-random-access scheduling policy; see
// Options.Schedule.
type Schedule = shard.Schedule

// Available schedules.
const (
	// ScheduleAuto resolves to ScheduleWave.
	ScheduleAuto = shard.ScheduleAuto
	// ScheduleWave resumes every unresolved shard concurrently.
	ScheduleWave = shard.ScheduleWave
	// ScheduleCostAware resumes the shard with the best bound-tightening
	// per unit of expected cost, one at a time.
	ScheduleCostAware = shard.ScheduleCostAware
	// ScheduleAdaptive is ScheduleCostAware with observed-cost feedback:
	// bounded probe resumes feed a per-shard EWMA of observed per-round
	// latency that overrides the declared step costs, so the schedule
	// keeps its charged-cost savings even when backends' declared cost
	// models lie. With truthful backends (and always at one shard) it
	// degrades to the declared-cost schedule.
	ScheduleAdaptive = shard.ScheduleAdaptive
)

// PublishPolicy selects when sharded no-random-access workers publish to
// the coordinator; see Options.Publish.
type PublishPolicy = shard.PublishPolicy

// Available publish policies.
const (
	// PublishAuto resolves to PublishPerRound for one shard and
	// PublishBoundCrossing otherwise.
	PublishAuto = shard.PublishAuto
	// PublishPerRound publishes after every sorted-access round.
	PublishPerRound = shard.PublishPerRound
	// PublishEveryR publishes every Options.PublishEvery rounds.
	PublishEveryR = shard.PublishEveryR
	// PublishBoundCrossing publishes on local-bound crossings of the
	// global M_k.
	PublishBoundCrossing = shard.PublishBoundCrossing
)

// TopK returns the top k objects of db under t using TA with unit costs.
func TopK(db *Database, t AggFunc, k int) (*Result, error) {
	return Query(db, t, k, Options{})
}

// Query runs a top-k query with full control over the algorithm, the
// access policy and the cost model. The returned Result carries the answer
// and the run's access accounting; Result.Cost(opts.Costs) is the paper's
// middleware cost.
func Query(db *Database, t AggFunc, k int, opts Options) (*Result, error) {
	if opts.Shards != 0 {
		return querySharded(db, t, k, opts)
	}
	al, src, err := prepare(db, opts)
	if err != nil {
		return nil, err
	}
	return al.Run(src, t, k)
}

// Sharded is a database partitioned once into object-disjoint shards for
// repeated sharded queries; it is immutable and safe for concurrent use.
type Sharded = shard.Engine

// ShardOptions configures one query on a Sharded handle.
type ShardOptions = shard.Options

// NewSharded partitions db into p object-disjoint shards and returns a
// reusable handle for the sharded concurrent engine. Use this instead of
// Options.Shards when issuing many queries: partitioning costs O(N·m) and
// a handle pays it once.
func NewSharded(db *Database, p int) (*Sharded, error) { return shard.New(db, p) }

// querySharded routes Options.Shards != 0 through the sharded engine after
// rejecting option combinations the engine does not support. The checks
// mirror the sequential path's, so an option that would be rejected there
// never slips through just because sharding is on — and every rejection
// wraps ErrBadQuery, the same identity the internal layers use, so callers
// branch on errors.Is instead of error text.
func querySharded(db *Database, t AggFunc, k int, opts Options) (*Result, error) {
	if opts.Shards == AutoShards {
		opts.Shards = shard.AutoShards(db.N(), k, runtime.GOMAXPROCS(0))
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("%w: Shards must be non-negative (or AutoShards), got %d", ErrBadQuery, opts.Shards)
	}
	switch opts.Algorithm {
	case "", AlgoTA, AlgoNRA:
	default:
		return nil, fmt.Errorf("%w: sharding supports only the TA and NRA algorithms, got %q", ErrBadQuery, opts.Algorithm)
	}
	noRandom := opts.NoRandomAccess || opts.Algorithm == AlgoNRA
	if opts.Algorithm == AlgoTA && opts.NoRandomAccess {
		return nil, fmt.Errorf("%w: TA needs random access; drop NoRandomAccess or use AlgoNRA for sharded sorted-only queries", ErrBadQuery)
	}
	if opts.CostAwareTA && noRandom {
		return nil, fmt.Errorf("%w: CostAwareTA needs random access; the sharded sorted-only mode is scheduled cost-aware via Options.Schedule instead", ErrBadQuery)
	}
	if opts.Theta != 0 && opts.Theta < 1 {
		return nil, fmt.Errorf("%w: θ must be at least 1, got %g", ErrBadQuery, opts.Theta)
	}
	if opts.Theta > 1 {
		return nil, fmt.Errorf("%w: sharding computes exact answers; θ-approximation is not supported", ErrBadQuery)
	}
	if len(opts.SortedLists) > 0 {
		return nil, fmt.Errorf("%w: sharding does not support restricting sorted access (TAz)", ErrBadQuery)
	}
	if opts.OnProgress != nil {
		return nil, fmt.Errorf("%w: sharding does not support the OnProgress callback", ErrBadQuery)
	}
	costs, err := normalizeCosts(opts.Costs)
	if err != nil {
		return nil, err
	}
	var eng *Sharded
	if opts.Backend == nil && opts.Cache == nil && opts.Fault == nil {
		eng, err = shard.New(db, opts.Shards)
	} else {
		eng, err = newShardedStack(db, opts.Shards, opts.Backend, opts.Fault, opts.Cache, costs)
	}
	if err != nil {
		return nil, err
	}
	return eng.Query(t, k, ShardOptions{
		Workers:        opts.ShardWorkers,
		Memoize:        opts.Memoize,
		CostAwareTA:    opts.CostAwareTA,
		Costs:          costs,
		NoRandomAccess: noRandom,
		Publish:        opts.Publish,
		PublishEvery:   opts.PublishEvery,
		Schedule:       opts.Schedule,
		Retry:          opts.Retry,
		MinTheta:       opts.MinTheta,
		Hedge:          opts.Hedge,
	})
}

// NewShardedStack partitions db into p shards and fronts each with the
// configured backend stack, bottom to top: the shard's sorted lists, the
// simulated remote backends (when backend is non-nil), and a per-shard
// cache shared across every query on the returned engine (when cache is
// non-nil). Use it instead of NewSharded when queries should run against
// heterogeneous backend costs, simulated latency, or a persistent cache;
// Engine.CacheStats reports the per-shard hit rates.
func NewShardedStack(db *Database, p int, backend *BackendSpec, cache *CacheSpec) (*Sharded, error) {
	return newShardedStack(db, p, backend, nil, cache, access.UnitCosts)
}

// NewFaultyStack is NewShardedStack with a fault injector in the stack:
// bottom to top, each shard's lists, the simulated remote backends (when
// backend is non-nil), the deterministic fault injector, and the per-shard
// cache (when cache is non-nil) — so faults hit cache misses exactly like a
// flaky remote subsystem would, and cached entries keep serving reads while
// the backend misbehaves. Queries on the returned engine should set
// ShardOptions.Retry (zero resolves to DefaultRetry) and may bound
// degradation with ShardOptions.MinTheta.
func NewFaultyStack(db *Database, p int, backend *BackendSpec, fault *FaultSpec, cache *CacheSpec) (*Sharded, error) {
	return newShardedStack(db, p, backend, fault, cache, access.UnitCosts)
}

// newShardedStack is NewShardedStack with the cost model backends inherit
// when the spec declares none (querySharded passes Options.Costs).
func newShardedStack(db *Database, p int, backend *BackendSpec, fault *FaultSpec, cache *CacheSpec, base CostModel) (*Sharded, error) {
	if db == nil {
		return nil, fmt.Errorf("%w: nil database", ErrBadQuery)
	}
	if p < 1 {
		return nil, fmt.Errorf("%w: shard count must be at least 1, got %d", ErrBadQuery, p)
	}
	if backend != nil {
		if err := backend.validate(); err != nil {
			return nil, err
		}
	}
	if fault != nil {
		if err := fault.validate(); err != nil {
			return nil, err
		}
		if fault.DeadList > db.M() {
			return nil, fmt.Errorf("%w: DeadList %d exceeds the %d lists", ErrBadQuery, fault.DeadList, db.M())
		}
	}
	dbs, err := db.Partition(p)
	if err != nil {
		return nil, err
	}
	shards := make([]shard.ShardBackend, len(dbs))
	for s, sdb := range dbs {
		sb := shard.ShardBackend{DB: sdb}
		if backend != nil || cache != nil || fault != nil {
			lists := make([]access.ListSource, sdb.M())
			for i := range lists {
				lists[i] = sdb.List(i)
			}
			if backend != nil {
				cm, lat := backend.forShard(s, len(dbs), base)
				for i := range lists {
					lists[i] = access.NewRemote(lists[i], cm, lat)
				}
			}
			if fault != nil {
				for i := range lists {
					dead := fault.DeadList > 0 && s == len(dbs)-1 && i == fault.DeadList-1
					lists[i] = access.NewFaulty(lists[i], fault.plan(uint64(s*sdb.M()+i), dead))
				}
			}
			if cache != nil {
				c := access.NewCache(access.CacheConfig{
					PageSize:    cache.PageSize,
					Pages:       cache.Pages,
					ColdPages:   cache.ColdPages,
					ColdHitCost: cache.ColdHitCost,
					Memo:        cache.Memo,
				})
				lists = access.WrapLists(c, lists)
				sb.Cache = c
			}
			sb.Lists = lists
		}
		shards[s] = sb
	}
	return shard.FromBackends(shards)
}

// validate rejects backend specs whose charges or distributions are
// malformed, mirroring normalizeCosts' rules for the cost half: declared
// costs must be a valid cost model (or both zero, meaning "inherit"), and
// negative costs are refused outright — they would flip the cost-aware
// scheduler's priorities and produce negative charged totals.
func (b *BackendSpec) validate() error {
	if b.SortedCost < 0 || b.RandomCost < 0 {
		return fmt.Errorf("%w: backend costs must be non-negative, got cS=%g cR=%g", ErrBadQuery, b.SortedCost, b.RandomCost)
	}
	if b.SortedCost == 0 && b.RandomCost > 0 {
		return fmt.Errorf("%w: backend sorted-access cost must be positive when a random cost is declared", ErrBadQuery)
	}
	if b.Latency < 0 {
		return fmt.Errorf("%w: backend latency must be non-negative, got %v", ErrBadQuery, b.Latency)
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		return fmt.Errorf("%w: backend jitter must be in [0, 1], got %g", ErrBadQuery, b.Jitter)
	}
	if b.StragglerShards < 0 || b.StragglerFactor < 0 {
		return fmt.Errorf("%w: straggler configuration must be non-negative, got shards=%d factor=%g", ErrBadQuery, b.StragglerShards, b.StragglerFactor)
	}
	if b.BatchMarginal < 0 || b.BatchMarginal > 1 {
		return fmt.Errorf("%w: backend batch marginal must be in [0, 1], got %g", ErrBadQuery, b.BatchMarginal)
	}
	return nil
}

// forShard resolves the spec into shard s's cost model and latency
// distribution: the declared (or inherited) base costs, stretched by
// StragglerFactor on the StragglerShards highest-index shards.
func (b *BackendSpec) forShard(s, p int, base CostModel) (access.CostModel, access.Latency) {
	cm := CostModel{CS: b.SortedCost, CR: b.RandomCost}
	if cm.CS == 0 && cm.CR == 0 {
		cm = base
	}
	lat := access.Latency{
		Sorted:        b.Latency,
		Random:        b.Latency,
		Jitter:        b.Jitter,
		Seed:          b.Seed + uint64(s)*0x9e37, // decorrelate per-shard jitter
		BatchRTT:      b.BatchRTT,
		BatchMarginal: b.BatchMarginal,
	}
	if b.StragglerShards > 0 && s >= p-b.StragglerShards {
		f := b.StragglerFactor
		if f <= 0 {
			f = 8
		}
		cm.CS *= f
		cm.CR *= f
		lat.Sorted = time.Duration(float64(lat.Sorted) * f)
		lat.Random = time.Duration(float64(lat.Random) * f)
	}
	return cm, lat
}

// normalizeCosts applies the zero-value default (unit costs) and rejects
// invalid cost models; shared by the sequential and sharded paths.
func normalizeCosts(c CostModel) (CostModel, error) {
	if c.CS == 0 && c.CR == 0 {
		c = access.UnitCosts
	}
	if c.CS <= 0 || c.CR < 0 {
		return c, fmt.Errorf("%w: invalid cost model %+v", ErrBadQuery, c)
	}
	return c, nil
}

// prepare resolves Options into an algorithm and a fresh accounting Source
// over the configured access stack (plain lists by default; simulated
// remote backends and/or a query-lifetime cache when Options.Backend /
// Options.Cache are set).
func prepare(db *Database, opts Options) (core.Algorithm, *access.Source, error) {
	al, policy, err := resolve(db, opts)
	if err != nil {
		return nil, nil, err
	}
	if opts.Backend == nil && opts.Cache == nil && opts.Fault == nil {
		return al, access.New(db, policy), nil
	}
	costs, err := normalizeCosts(opts.Costs)
	if err != nil {
		return nil, nil, err
	}
	lists := make([]access.ListSource, db.M())
	for i := range lists {
		lists[i] = db.List(i)
	}
	if opts.Backend != nil {
		if err := opts.Backend.validate(); err != nil {
			return nil, nil, err
		}
		// One logical backend set: straggler marking is per shard and does
		// not apply here.
		spec := *opts.Backend
		spec.StragglerShards = 0
		cm, lat := spec.forShard(0, 1, costs)
		for i := range lists {
			lists[i] = access.NewRemote(lists[i], cm, lat)
		}
	}
	if opts.Fault != nil {
		// resolve already validated the spec and the algorithm choice.
		for i := range lists {
			lists[i] = access.NewFaulty(lists[i], opts.Fault.plan(uint64(i), opts.Fault.DeadList == i+1))
		}
	}
	if opts.Cache != nil {
		c := access.NewCache(access.CacheConfig{
			PageSize:    opts.Cache.PageSize,
			Pages:       opts.Cache.Pages,
			ColdPages:   opts.Cache.ColdPages,
			ColdHitCost: opts.Cache.ColdHitCost,
			Memo:        opts.Cache.Memo,
		})
		lists = access.WrapLists(c, lists)
	}
	src := access.FromLists(lists, policy)
	src.SetRetry(opts.Retry.Resolve())
	return al, src, nil
}

// resolve maps Options to an algorithm and access policy without binding
// them to a Source — shared by the sequential path (which opens a fresh
// Source over db) and the batch executor (which attaches the query to a
// shared scan).
func resolve(db *Database, opts Options) (core.Algorithm, access.Policy, error) {
	if db == nil {
		return nil, access.Policy{}, fmt.Errorf("%w: nil database", ErrBadQuery)
	}
	if opts.Publish != PublishAuto || opts.PublishEvery != 0 {
		return nil, access.Policy{}, fmt.Errorf("%w: publish batching applies only to sharded no-random-access queries", ErrBadQuery)
	}
	if opts.Schedule != ScheduleAuto {
		return nil, access.Policy{}, fmt.Errorf("%w: scheduling policies apply only to sharded no-random-access queries", ErrBadQuery)
	}
	if opts.MinTheta != 0 {
		return nil, access.Policy{}, fmt.Errorf("%w: MinTheta applies to sharded queries; the sequential path has no surviving shards to degrade over", ErrBadQuery)
	}
	if opts.Hedge {
		return nil, access.Policy{}, fmt.Errorf("%w: Hedge applies to sharded no-random-access queries under a serialized schedule", ErrBadQuery)
	}
	costs, err := normalizeCosts(opts.Costs)
	if err != nil {
		return nil, access.Policy{}, err
	}
	policy := access.Policy{NoRandom: opts.NoRandomAccess}
	if len(opts.SortedLists) > 0 {
		policy.SortedLists = make(map[int]bool, len(opts.SortedLists))
		for _, i := range opts.SortedLists {
			if i < 0 || i >= db.M() {
				return nil, access.Policy{}, fmt.Errorf("%w: sorted list index %d out of range [0,%d)", ErrBadQuery, i, db.M())
			}
			policy.SortedLists[i] = true
		}
	}
	name := opts.Algorithm
	if name == "" {
		if opts.NoRandomAccess {
			name = AlgoNRA
		} else {
			name = AlgoTA
		}
	}
	if opts.CostAwareTA {
		if name != AlgoTA {
			return nil, access.Policy{}, fmt.Errorf("%w: CostAwareTA requires the TA algorithm, got %q", ErrBadQuery, name)
		}
		if opts.NoRandomAccess {
			return nil, access.Policy{}, fmt.Errorf("%w: CostAwareTA needs random access; use NRA (with Schedule for cost-awareness) when random access is impossible", ErrBadQuery)
		}
		if opts.Theta > 1 {
			return nil, access.Policy{}, fmt.Errorf("%w: CostAwareTA computes exact answers; θ-approximation is not supported", ErrBadQuery)
		}
	}
	if opts.Fault != nil {
		if err := opts.Fault.validate(); err != nil {
			return nil, access.Policy{}, err
		}
		if opts.Fault.DeadList > db.M() {
			return nil, access.Policy{}, fmt.Errorf("%w: DeadList %d exceeds the %d lists", ErrBadQuery, opts.Fault.DeadList, db.M())
		}
		switch name {
		case AlgoTA, AlgoNRA, AlgoCA:
		default:
			return nil, access.Policy{}, fmt.Errorf("%w: fault injection requires a failure-aware algorithm (TA, NRA or CA), got %q", ErrBadQuery, name)
		}
	}
	var al core.Algorithm
	switch name {
	case AlgoTA:
		if opts.CostAwareTA {
			al = &core.CostAwareTA{Costs: costs, OnProgress: opts.OnProgress}
		} else {
			al = &core.TA{Theta: opts.Theta, Memoize: opts.Memoize, OnProgress: opts.OnProgress}
		}
	case AlgoFA:
		al = core.FA{}
	case AlgoNRA:
		al = &core.NRA{OnProgress: opts.OnProgress}
	case AlgoCA:
		al = &core.CA{Costs: costs}
	case AlgoNaive:
		al = core.Naive{}
	case AlgoMaxTopK:
		al = core.MaxTopK{}
	default:
		return nil, access.Policy{}, fmt.Errorf("%w: unknown algorithm %q", ErrBadQuery, name)
	}
	return al, policy, nil
}
