package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestRepoClean is the acceptance gate: the analyzers must report zero
// findings on the repository itself.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := driver.Load([]string{"repro/..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := driver.Analyze(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("analyzing module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	}
}

// TestVetTool builds the binary and exercises the go vet -vettool protocol
// against a package the analyzers scope to.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "reprolint")

	build := exec.Command("go", "build", "-o", bin, "./cmd/reprolint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/reprolint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "repro/internal/access", "repro/internal/core")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
