// Command reprolint runs the repro-specific analyzers (internal/analysis)
// over the module. Two modes:
//
//	reprolint ./...                 standalone: load, analyze, print findings
//	go vet -vettool=$(which reprolint) ./...   unitchecker protocol
//
// Standalone mode exits 1 on findings; vettool mode follows the cmd/vet
// convention and exits 2. Both print file:line:col: message (analyzer).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// selfHash digests the running executable so -V=full reports a version that
// changes exactly when the tool does.
func selfHash() []byte {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return h.Sum(nil)
}

func main() {
	args := os.Args[1:]

	// go vet probes the tool's version (for build caching) and analyzer
	// flags before handing it work. The "devel" form requires a buildID
	// field; hashing the executable gives cmd/go a stable content ID.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			fmt.Printf("reprolint version devel buildID=%x\n", selfHash())
			return
		}
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetTool(args[0]))
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

func standalone(patterns []string) int {
	pkgs, err := driver.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 1
	}
	diags, err := driver.Analyze(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet configuration file the tool needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetTool implements the unitchecker protocol: analyze exactly one package
// described by a .cfg file, write facts (none) to VetxOutput, report
// diagnostics on stderr, exit 2 if there were any.
func vetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// go vet requires the facts file to exist even though we export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Test variants are listed as "path [path.test]"; analyzers scope on the
	// canonical import path and skip _test.go files entirely.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	var active []*analysis.Analyzer
	for _, an := range analysis.All() {
		if an.AppliesTo(importPath) {
			active = append(active, an)
		}
	}
	if len(active) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	files, err := driver.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 1
	}
	if len(files) == 0 {
		return 0
	}

	// Resolve imports through the vet config's vendor-aware ImportMap, then
	// the compiled package files go build already produced.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}

	pkg, info, err := driver.TypeCheck(importPath, fset, files, driver.NewImporter(fset, exports))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 1
	}

	var diags []analysis.Diagnostic
	for _, an := range active {
		pass := analysis.NewPass(an, fset, files, pkg, info)
		if err := an.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "reprolint: %s on %s: %v\n", an.Name, importPath, err)
			return 1
		}
		diags = append(diags, pass.Diagnostics()...)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
