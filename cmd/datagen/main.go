// Command datagen emits synthetic middleware databases as CSV, in the
// format cmd/topk consumes.
//
// Usage:
//
//	datagen -n 10000 -m 3 -workload uniform -seed 1 > db.csv
//	datagen -n 10000 -m 3 -workload zipf -skew 3 > db.csv
//	datagen -n 10000 -m 2 -workload correlated -noise 0.05 > db.csv
//	datagen -n 10000 -m 4 -workload distinct > db.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 1000, "number of objects")
		m     = flag.Int("m", 3, "number of attribute lists")
		seed  = flag.Int64("seed", 1, "RNG seed")
		kind  = flag.String("workload", "uniform", "uniform|zipf|correlated|anticorrelated|plateau|distinct|mixture")
		skew  = flag.Float64("skew", 2, "zipf skew")
		noise = flag.Float64("noise", 0.05, "correlation noise")
		lvls  = flag.Int("levels", 8, "plateau grade levels")
	)
	flag.Parse()
	spec := workload.Spec{N: *n, M: *m, Seed: *seed}
	var (
		db  *model.Database
		err error
	)
	switch *kind {
	case "uniform":
		db, err = workload.IndependentUniform(spec)
	case "zipf":
		db, err = workload.Zipf(spec, *skew)
	case "correlated":
		db, err = workload.Correlated(spec, *noise)
	case "anticorrelated":
		db, err = workload.AntiCorrelated(spec, *noise)
	case "plateau":
		db, err = workload.Plateau(spec, *lvls)
	case "distinct":
		db, err = workload.DistinctUniform(spec)
	case "mixture":
		db, err = workload.Mixture(spec, []float64{0.4, 0.3, 0.3})
	default:
		err = fmt.Errorf("unknown workload %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := model.WriteCSV(os.Stdout, db); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
