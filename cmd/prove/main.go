// Command prove runs a top-k algorithm with access tracing and then
// verifies that the run's observations constitute a *proof* of its answer
// — the paper's Section 5 reading of instance optimality, where the cost
// of the best nondeterministic algorithm is the cost of the shortest proof.
// A correct algorithm must always halt in a proof state; this tool makes
// that checkable for any CSV database.
//
// Usage:
//
//	prove -data db.csv -agg min -k 5 -algo TA
//	prove -data db.csv -agg avg -k 5 -algo NRA -distinct
//	prove -data db.csv -agg avg -k 5 -theta 1.5 -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/access"
	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/instopt"
	"repro/internal/model"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV database file (required)")
		aggName   = flag.String("agg", "min", "aggregation: min|max|sum|avg|product|median|geomean")
		k         = flag.Int("k", 10, "number of answers")
		algoName  = flag.String("algo", "TA", "algorithm: TA|FA|NRA|CA|Naive|MaxTopK|Intermittent")
		theta     = flag.Float64("theta", 0, "θ-approximation parameter (>1 enables TAθ)")
		distinct  = flag.Bool("distinct", false, "assume the distinctness property when verifying")
		showTrace = flag.Bool("trace", false, "print the full access trace")
		cs        = flag.Float64("cs", 1, "sorted access cost cS")
		cr        = flag.Float64("cr", 1, "random access cost cR")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "prove: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	db, err := model.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	t, err := aggByName(*aggName, db.M())
	if err != nil {
		fatal(err)
	}
	costs := access.CostModel{CS: *cs, CR: *cr}
	al, policy, err := algoByName(*algoName, *theta, costs)
	if err != nil {
		fatal(err)
	}
	src := access.New(db, policy)
	trace := src.StartTrace()
	res, err := al.Run(src, t, *k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s answered top %d (%d sorted + %d random accesses, middleware cost %.6g):\n",
		al.Name(), *k, res.Stats.Sorted, res.Stats.Random, res.Cost(costs))
	for i, it := range res.Items {
		fmt.Printf("%3d. object %-8d [%.6g, %.6g]\n", i+1, it.Object, float64(it.Lower), float64(it.Upper))
	}
	if *showTrace {
		fmt.Printf("trace: %s\n", trace)
	}
	rep, err := instopt.Verify(trace, t, db.N(), res.Objects(), instopt.Options{
		Theta:    *theta,
		Distinct: *distinct,
	})
	if err != nil {
		fatal(err)
	}
	if rep.Valid {
		fmt.Printf("certificate: VALID — answer floor %.6g dominates every outside bound (max %.6g)\n",
			rep.AnswerFloor, rep.Ceiling)
		return
	}
	fmt.Printf("certificate: INVALID — %s\n", rep.Reason)
	os.Exit(1)
}

func algoByName(name string, theta float64, costs access.CostModel) (core.Algorithm, access.Policy, error) {
	switch strings.ToLower(name) {
	case "ta":
		return &core.TA{Theta: theta}, access.AllowAll, nil
	case "fa":
		return core.FA{}, access.AllowAll, nil
	case "nra":
		return &core.NRA{}, access.Policy{NoRandom: true}, nil
	case "ca":
		return &core.CA{Costs: costs}, access.AllowAll, nil
	case "naive":
		return core.Naive{}, access.AllowAll, nil
	case "maxtopk":
		return core.MaxTopK{}, access.Policy{NoRandom: true}, nil
	case "intermittent":
		return &core.Intermittent{Costs: costs}, access.AllowAll, nil
	}
	return nil, access.Policy{}, fmt.Errorf("unknown algorithm %q", name)
}

func aggByName(name string, m int) (agg.Func, error) {
	switch strings.ToLower(name) {
	case "min":
		return agg.Min(m), nil
	case "max":
		return agg.Max(m), nil
	case "sum":
		return agg.Sum(m), nil
	case "avg", "average":
		return agg.Avg(m), nil
	case "product":
		return agg.Product(m), nil
	case "median":
		return agg.Median(m), nil
	case "geomean":
		return agg.GeometricMean(m), nil
	}
	return nil, fmt.Errorf("unknown aggregation %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prove:", err)
	os.Exit(1)
}
