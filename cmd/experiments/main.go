// Command experiments regenerates every reproduction experiment table
// (E01–E26, cataloged in docs/EXPERIMENTS.md). With no arguments it runs
// everything; with experiment IDs as arguments it runs just those.
//
// Usage:
//
//	experiments            # run all
//	experiments E05 E09    # run selected experiments
//	experiments -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%s  %s\n", e.ID, e.Title)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e := experiments.ByID(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: rendering %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
