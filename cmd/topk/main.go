// Command topk runs a top-k aggregation query over a CSV database (the
// format written by cmd/datagen and model.WriteCSV: a header row, then one
// "id,g1,...,gm" row per object).
//
// Usage:
//
//	topk -data db.csv -agg min -k 10
//	topk -data db.csv -agg avg -k 5 -algo CA -cs 1 -cr 10
//	topk -data db.csv -agg sum -k 3 -algo NRA -no-random
//	topk -data db.csv -agg avg -k 5 -theta 1.5
//	topk -data db.csv -agg avg -k 10 -shards 4
//	topk -data db.csv -agg avg -k 10 -shards 4 -no-random
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/agg"
	"repro/internal/model"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV database file (required)")
		aggName  = flag.String("agg", "min", "aggregation: min|max|sum|avg|product|median|geomean")
		k        = flag.Int("k", 10, "number of answers")
		algo     = flag.String("algo", "", "algorithm: TA|FA|NRA|CA|Naive|MaxTopK (default TA, or NRA with -no-random)")
		cs       = flag.Float64("cs", 1, "sorted access cost cS")
		cr       = flag.Float64("cr", 1, "random access cost cR")
		theta    = flag.Float64("theta", 0, "θ-approximation parameter (>1 enables TAθ)")
		noRandom = flag.Bool("no-random", false, "forbid random access (NRA scenario)")
		shards   = flag.Int("shards", 0, "partition the database into this many shards and query them concurrently (TA workers, or resumable NRA workers with -no-random; 0 = no sharding)")
		workers  = flag.Int("shard-workers", 0, "max concurrent shard workers (0 = one per shard)")
		publish  = flag.String("publish", "", "sharded NRA publish policy: per-round|every-r|bound-crossing (default: per-round at P=1, bound-crossing otherwise)")
		publishR = flag.Int("publish-every", 0, "publish interval in rounds for every-r (default 16) or the bound-crossing safety valve (default 64)")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "topk: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	db, err := readDB(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	t, err := aggByName(*aggName, db.M())
	if err != nil {
		fatal(err)
	}
	res, err := repro.Query(db, t, *k, repro.Options{
		Algorithm:      repro.AlgorithmName(normalizeAlgo(*algo)),
		Costs:          repro.CostModel{CS: *cs, CR: *cr},
		Theta:          *theta,
		NoRandomAccess: *noRandom,
		Shards:         *shards,
		ShardWorkers:   *workers,
		Publish:        repro.PublishPolicy(*publish),
		PublishEvery:   *publishR,
	})
	if err != nil {
		fatal(err)
	}
	engine := normalizeAlgo(*algo)
	if engine == "" {
		engine = string(repro.AlgoTA)
		if *noRandom {
			engine = string(repro.AlgoNRA)
		}
	}
	if *shards >= 1 {
		worker := "TA"
		if *noRandom || engine == string(repro.AlgoNRA) {
			worker = "NRA"
		}
		engine = fmt.Sprintf("sharded %s, P=%d", worker, *shards)
	}
	fmt.Printf("top %d under %s (%s, N=%d, m=%d):\n", *k, *aggName, engine, db.N(), db.M())
	for i, it := range res.Items {
		if res.GradesExact {
			fmt.Printf("%3d. object %-8d grade %.6g\n", i+1, it.Object, float64(it.Grade))
		} else {
			fmt.Printf("%3d. object %-8d grade in [%.6g, %.6g]\n", i+1, it.Object, float64(it.Lower), float64(it.Upper))
		}
	}
	cm := repro.CostModel{CS: *cs, CR: *cr}
	fmt.Printf("accesses: %d sorted, %d random; middleware cost %.6g (cS=%g, cR=%g)\n",
		res.Stats.Sorted, res.Stats.Random, res.Cost(cm), *cs, *cr)
	if res.Theta > 1 {
		fmt.Printf("approximation guarantee: θ = %.4g\n", res.Theta)
	}
}

// normalizeAlgo maps user input to the canonical algorithm names.
func normalizeAlgo(s string) string {
	switch strings.ToLower(s) {
	case "ta":
		return string(repro.AlgoTA)
	case "fa":
		return string(repro.AlgoFA)
	case "nra":
		return string(repro.AlgoNRA)
	case "ca":
		return string(repro.AlgoCA)
	case "naive":
		return string(repro.AlgoNaive)
	case "maxtopk":
		return string(repro.AlgoMaxTopK)
	}
	return s
}

// readDB parses the CSV database format.
func readDB(r io.Reader) (*repro.Database, error) { return model.ReadCSV(r) }

// aggByName resolves an aggregation function by name and arity.
func aggByName(name string, m int) (repro.AggFunc, error) {
	switch strings.ToLower(name) {
	case "min":
		return agg.Min(m), nil
	case "max":
		return agg.Max(m), nil
	case "sum":
		return agg.Sum(m), nil
	case "avg", "average":
		return agg.Avg(m), nil
	case "product":
		return agg.Product(m), nil
	case "median":
		return agg.Median(m), nil
	case "geomean":
		return agg.GeometricMean(m), nil
	}
	return nil, fmt.Errorf("unknown aggregation %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topk:", err)
	os.Exit(1)
}
