// Command topk runs a top-k aggregation query over a CSV database (the
// format written by cmd/datagen and model.WriteCSV: a header row, then one
// "id,g1,...,gm" row per object).
//
// Usage:
//
//	topk -data db.csv -agg min -k 10
//	topk -data db.csv -agg avg -k 5 -algo CA -cs 1 -cr 10
//	topk -data db.csv -agg sum -k 3 -algo NRA -no-random
//	topk -data db.csv -agg avg -k 5 -theta 1.5
//	topk -data db.csv -agg avg -k 10 -shards 4
//	topk -data db.csv -agg avg -k 10 -shards 4 -no-random
//	topk -data db.csv -agg avg -k 10 -shards -1 -no-random        (auto shard count)
//	topk -data db.csv -agg avg -k 10 -shards 4 -no-random \
//	     -remote -cs 1 -cr 8 -backend-latency 200us -backend-stragglers 1 \
//	     -cache -schedule cost-aware                               (remote backend stack)
//	topk -data db.csv -agg avg -k 10 -cs 1 -cr 8 -cost-aware-ta   (CA-style access planning)
//	topk -data db.csv -agg avg -k 10 -shards 4 -no-random \
//	     -remote -schedule adaptive                                (observed-cost feedback)
//	topk -data db.csv -agg avg -k 10 -shards 4 \
//	     -fault-rate 0.05 -fault-burst 500 -retry-budget 6         (chaos: transient faults, retried)
//	topk -data db.csv -agg avg -k 10 -shards 4 \
//	     -fault-dead-list 0 -min-theta 2                           (shard loss → θ-degraded answer)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro"
	"repro/internal/agg"
	"repro/internal/model"
	"repro/internal/shard"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV database file (required)")
		aggName  = flag.String("agg", "min", "aggregation: min|max|sum|avg|product|median|geomean")
		k        = flag.Int("k", 10, "number of answers")
		algo     = flag.String("algo", "", "algorithm: TA|FA|NRA|CA|Naive|MaxTopK (default TA, or NRA with -no-random)")
		cs       = flag.Float64("cs", 1, "sorted access cost cS")
		cr       = flag.Float64("cr", 1, "random access cost cR")
		theta    = flag.Float64("theta", 0, "θ-approximation parameter (>1 enables TAθ)")
		noRandom = flag.Bool("no-random", false, "forbid random access (NRA scenario)")
		costTA   = flag.Bool("cost-aware-ta", false, "cost-adaptive TA: allocate sorted accesses cheapest-first and spend random access at the CA cadence h≈cR/cS (exact answers, lower charged cost when cR≫cS)")
		shards   = flag.Int("shards", 0, "partition the database into this many shards and query them concurrently (TA workers, or resumable NRA workers with -no-random; 0 = no sharding, -1 = pick automatically from N, k and GOMAXPROCS)")
		workers  = flag.Int("shard-workers", 0, "max concurrent shard workers (0 = one per shard)")
		publish  = flag.String("publish", "", "sharded NRA publish policy: per-round|every-r|bound-crossing (default: per-round at P=1, bound-crossing otherwise)")
		publishR = flag.Int("publish-every", 0, "publish interval in rounds for every-r (default 16) or the bound-crossing safety valve (default 64)")

		remote     = flag.Bool("remote", false, "simulate remote backends: every access is charged -cs/-cr and delayed per -backend-latency")
		latency    = flag.Duration("backend-latency", 0, "base simulated latency per backend access (with -remote)")
		jitter     = flag.Float64("backend-jitter", 0, "latency jitter fraction in [0,1] (with -remote)")
		stragglers = flag.Int("backend-stragglers", 0, "number of highest-index shards whose backend costs/latency are stretched by -straggler-factor")
		stragglerF = flag.Float64("straggler-factor", 0, "cost/latency multiplier for straggler shards (default 8)")
		batchRTT   = flag.Bool("backend-batch-rtt", false, "batched sorted reads pay one round-trip draw per batch plus a per-entry marginal (with -remote)")
		batchMarg  = flag.Float64("backend-batch-marginal", 0, "per-additional-entry latency fraction of the base sorted latency under -backend-batch-rtt (default 0.1)")
		useCache   = flag.Bool("cache", false, "insert a per-shard page cache + random-access memo above the backends")
		cachePages = flag.Int("cache-pages", 0, "hot-tier page-cache capacity in pages (default 256)")
		pageSize   = flag.Int("cache-page-size", 0, "entries per cached page (default 64)")
		coldPages  = flag.Int("cache-cold-pages", 0, "cold-tier capacity in pages behind the TinyLFU admission filter (default 4x -cache-pages; negative disables the cold tier)")
		coldCost   = flag.Float64("cache-cold-hit-cost", 0, "fraction of the declared access cost charged per cold-tier hit (default 0.1; negative = free)")
		cacheMemo  = flag.Int("cache-memo", 0, "random-access memo capacity in grades (default 4096)")
		schedule   = flag.String("schedule", "", "sharded NRA scheduling policy: wave|cost-aware|adaptive (default wave; adaptive feeds observed latency back into the cost-aware priorities)")

		faultRate  = flag.Float64("fault-rate", 0, "per-access transient failure probability in [0,1] (enables the fault injector)")
		faultBurst = flag.Int("fault-burst", 0, "open a 4-access outage window every this many accesses per list (0 = no bursts)")
		faultDead  = flag.Int("fault-dead-list", -1, "kill this list (0-based) permanently — on the highest-index shard when sharded — to exercise θ-degradation (-1 = none)")
		faultSeed  = flag.Uint64("fault-seed", 0, "seed for the deterministic fault schedules")
		retryMax   = flag.Int("retry-budget", 0, "max attempts per access for transient backend failures (0 = default policy: 4 attempts, 256 retries/query)")
		hedge      = flag.Bool("hedge", false, "hedge straggling shard resumes (sharded NRA with -schedule cost-aware or adaptive)")
		minTheta   = flag.Float64("min-theta", 0, "weakest accepted θ guarantee when shards are lost (0 = accept any finite θ; requires -shards)")

		traceOut       = flag.String("trace-out", "", "write a traffic trace to this file: generated from the traffic flags, or re-recorded from -trace-in for a round-trip diff")
		traceIn        = flag.String("trace-in", "", "replay the traffic trace in this file against -data and report open-loop latency percentiles and charged cost")
		trafficConfig  = flag.String("traffic-config", "", "JSON traffic config for -trace-out (default: built-in users+crawlers mix)")
		trafficSeed    = flag.Uint64("traffic-seed", 42, "seed for trace generation")
		trafficReqs    = flag.Int("traffic-requests", 1000, "number of requests to generate")
		trafficArrival = flag.String("traffic-arrival", "poisson", "arrival process for the generated users cohort: poisson|diurnal|burst")
		trafficRate    = flag.Float64("traffic-rate", 200, "mean arrival rate in requests/second for the generated mix")
		traceWorkers   = flag.Int("trace-workers", 0, "simulated (and real) server count for open-loop replay (0 = 1)")
		traceBatch     = flag.Int("trace-batch", 0, "shared-scan admission batch size for unsharded replay (0 = 8)")
	)
	flag.Parse()
	if *traceOut != "" && *traceIn == "" {
		// Trace generation needs no database.
		if err := generateTrace(*traceOut, *trafficConfig, *trafficArrival, *trafficSeed, *trafficRate, *trafficReqs); err != nil {
			fatal(err)
		}
		return
	}
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "topk: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	db, err := readDB(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	t, err := aggByName(*aggName, db.M())
	if err != nil {
		fatal(err)
	}
	var backendSpec *repro.BackendSpec
	if *remote {
		backendSpec = &repro.BackendSpec{
			SortedCost:      *cs,
			RandomCost:      *cr,
			Latency:         *latency,
			Jitter:          *jitter,
			StragglerShards: *stragglers,
			StragglerFactor: *stragglerF,
			BatchRTT:        *batchRTT,
			BatchMarginal:   *batchMarg,
		}
	}
	var cacheSpec *repro.CacheSpec
	if *useCache {
		cacheSpec = &repro.CacheSpec{
			PageSize:    *pageSize,
			Pages:       *cachePages,
			ColdPages:   *coldPages,
			ColdHitCost: *coldCost,
			Memo:        *cacheMemo,
		}
	}
	var faultSpec *repro.FaultSpec
	if *faultRate > 0 || *faultBurst > 0 || *faultDead >= 0 {
		faultSpec = &repro.FaultSpec{
			Rate:       *faultRate,
			BurstEvery: *faultBurst,
			DeadList:   *faultDead + 1, // flag is 0-based, spec is 1-based
			Seed:       *faultSeed,
		}
	}
	retry := repro.Retry{MaxAttempts: *retryMax}
	// Resolve the shard count once: the engine build, the query and the
	// banner must all agree on it.
	p := *shards
	if p == repro.AutoShards {
		p = shard.AutoShards(db.N(), *k, runtime.GOMAXPROCS(0))
	}
	if *traceIn != "" {
		err := replayTraceFile(db, *traceIn, *traceOut, repro.ReplayOptions{
			Shards:   p,
			Workers:  *traceWorkers,
			Batch:    *traceBatch,
			Backend:  backendSpec,
			Cache:    cacheSpec,
			Fault:    faultSpec,
			Costs:    repro.CostModel{CS: *cs, CR: *cr},
			Retry:    retry,
			MinTheta: *minTheta,
		})
		if err != nil {
			fatal(err)
		}
		return
	}
	opts := repro.Options{
		Algorithm:      repro.AlgorithmName(normalizeAlgo(*algo)),
		Costs:          repro.CostModel{CS: *cs, CR: *cr},
		Theta:          *theta,
		NoRandomAccess: *noRandom,
		CostAwareTA:    *costTA,
		Shards:         p,
		ShardWorkers:   *workers,
		Publish:        repro.PublishPolicy(*publish),
		PublishEvery:   *publishR,
		Backend:        backendSpec,
		Cache:          cacheSpec,
		Schedule:       repro.Schedule(*schedule),
		Fault:          faultSpec,
		Retry:          retry,
		MinTheta:       *minTheta,
		Hedge:          *hedge,
	}
	var res *repro.Result
	var eng *repro.Sharded
	if cacheSpec != nil && p != 0 {
		// Build the engine by hand so the per-shard cache statistics can
		// be reported after the query — enforcing the same option rules
		// the repro.Query path applies.
		engineAlgo := normalizeAlgo(*algo)
		switch engineAlgo {
		case "", string(repro.AlgoTA), string(repro.AlgoNRA):
		default:
			fatal(fmt.Errorf("%w: sharding supports only the TA and NRA algorithms, got %q", repro.ErrBadQuery, *algo))
		}
		if engineAlgo == string(repro.AlgoTA) && *noRandom {
			fatal(fmt.Errorf("%w: TA needs random access; drop -no-random or use -algo NRA", repro.ErrBadQuery))
		}
		if *theta != 0 {
			fatal(fmt.Errorf("%w: sharding computes exact answers; -theta is not supported", repro.ErrBadQuery))
		}
		eng, err = repro.NewFaultyStack(db, p, backendSpec, faultSpec, cacheSpec)
		if err != nil {
			fatal(err)
		}
		res, err = eng.Query(t, *k, repro.ShardOptions{
			Workers:        *workers,
			CostAwareTA:    *costTA,
			Costs:          repro.CostModel{CS: *cs, CR: *cr},
			NoRandomAccess: *noRandom || engineAlgo == string(repro.AlgoNRA),
			Publish:        repro.PublishPolicy(*publish),
			PublishEvery:   *publishR,
			Schedule:       repro.Schedule(*schedule),
			Retry:          retry,
			MinTheta:       *minTheta,
			Hedge:          *hedge,
		})
	} else {
		res, err = repro.Query(db, t, *k, opts)
	}
	if err != nil {
		fatal(err)
	}
	engine := normalizeAlgo(*algo)
	if engine == "" {
		engine = string(repro.AlgoTA)
		if *noRandom {
			engine = string(repro.AlgoNRA)
		}
	}
	if *costTA && engine == string(repro.AlgoTA) {
		engine = "cost-aware TA"
	}
	if p >= 1 {
		worker := "TA"
		if *costTA {
			worker = "cost-aware TA"
		}
		if *noRandom || engine == string(repro.AlgoNRA) {
			worker = "NRA"
		}
		if *shards == repro.AutoShards {
			engine = fmt.Sprintf("sharded %s, P=auto(%d)", worker, p)
		} else {
			engine = fmt.Sprintf("sharded %s, P=%d", worker, p)
		}
	}
	fmt.Printf("top %d under %s (%s, N=%d, m=%d):\n", *k, *aggName, engine, db.N(), db.M())
	for i, it := range res.Items {
		if res.GradesExact {
			fmt.Printf("%3d. object %-8d grade %.6g\n", i+1, it.Object, float64(it.Grade))
		} else {
			fmt.Printf("%3d. object %-8d grade in [%.6g, %.6g]\n", i+1, it.Object, float64(it.Lower), float64(it.Upper))
		}
	}
	cm := repro.CostModel{CS: *cs, CR: *cr}
	fmt.Printf("accesses: %d sorted, %d random; middleware cost %.6g (cS=%g, cR=%g)\n",
		res.Stats.Sorted, res.Stats.Random, res.Cost(cm), *cs, *cr)
	if *remote || *useCache {
		fmt.Printf("charged by backends: %.6g sorted + %.6g random = %.6g\n",
			res.Stats.ChargedSorted, res.Stats.ChargedRandom, res.Stats.Charged())
	}
	if eng != nil {
		var agg repro.CacheStats
		for _, cs := range eng.CacheStats() {
			agg.Hits += cs.Hits
			agg.ColdHits += cs.ColdHits
			agg.Misses += cs.Misses
			agg.ProbeHits += cs.ProbeHits
			agg.ProbeMisses += cs.ProbeMisses
			agg.Evictions += cs.Evictions
			agg.HotEvictions += cs.HotEvictions
			agg.ColdEvictions += cs.ColdEvictions
			agg.AdmissionRejects += cs.AdmissionRejects
		}
		total := agg.Hits + agg.ColdHits + agg.Misses
		fmt.Printf("cache: %d/%d sorted hits (%.1f%%: %d hot + %d cold), %d/%d probe hits\n",
			agg.Hits+agg.ColdHits, total, 100*agg.HitRate(), agg.Hits, agg.ColdHits,
			agg.ProbeHits, agg.ProbeHits+agg.ProbeMisses)
		if agg.HotEvictions > 0 || agg.Evictions > 0 {
			fmt.Printf("cache tiers: %d hot evictions (%d rejected by admission), %d cold evictions, %d pages dropped\n",
				agg.HotEvictions, agg.AdmissionRejects, agg.ColdEvictions, agg.Evictions)
		}
	}
	if st := res.Stats; st.Faults > 0 || st.Retries > 0 || st.Hedges > 0 || st.DeadShards > 0 {
		fmt.Printf("robustness: %d faults, %d retries, %d hedged resumes, %d dead shards\n",
			st.Faults, st.Retries, st.Hedges, st.DeadShards)
	}
	if res.Stats.DeadShards > 0 {
		fmt.Printf("degraded answer: θ = %.4g certified by the surviving shards\n", res.Theta)
	} else if res.Theta > 1 {
		fmt.Printf("approximation guarantee: θ = %.4g\n", res.Theta)
	}
}

// normalizeAlgo maps user input to the canonical algorithm names.
func normalizeAlgo(s string) string {
	switch strings.ToLower(s) {
	case "ta":
		return string(repro.AlgoTA)
	case "fa":
		return string(repro.AlgoFA)
	case "nra":
		return string(repro.AlgoNRA)
	case "ca":
		return string(repro.AlgoCA)
	case "naive":
		return string(repro.AlgoNaive)
	case "maxtopk":
		return string(repro.AlgoMaxTopK)
	}
	return s
}

// readDB parses the CSV database format.
func readDB(r io.Reader) (*repro.Database, error) { return model.ReadCSV(r) }

// aggByName resolves an aggregation function by name and arity through the
// shared registry, branding failures with the CLI's error identity.
func aggByName(name string, m int) (repro.AggFunc, error) {
	f, err := agg.ByName(name, m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", repro.ErrBadQuery, err)
	}
	return f, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topk:", err)
	os.Exit(1)
}
