package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/traffic"
)

// generateTrace builds a traffic config (from a JSON file or the built-in
// two-cohort mix), generates its request stream, and records it to path.
func generateTrace(path, cfgPath, arrival string, seed uint64, rate float64, n int) error {
	cfg, err := trafficConfigFor(cfgPath, arrival, seed, rate, n)
	if err != nil {
		return err
	}
	reqs, err := traffic.Generate(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := traffic.Record(f, reqs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	span := time.Duration(0)
	if len(reqs) > 0 {
		span = reqs[len(reqs)-1].At
	}
	fmt.Printf("wrote %d-request trace to %s (%d cohorts, %v span, seed %d)\n",
		len(reqs), path, len(cfg.Cohorts), span.Round(time.Millisecond), cfg.Seed)
	return nil
}

// trafficConfigFor loads a traffic.Config from a JSON file, or builds the
// default mix: a "users" cohort (repeat-heavy Zipf population on the chosen
// arrival process) plus a "crawlers" cohort (one-shot specs trickling in at
// a quarter of the rate).
func trafficConfigFor(cfgPath, arrival string, seed uint64, rate float64, n int) (traffic.Config, error) {
	if cfgPath != "" {
		data, err := os.ReadFile(cfgPath)
		if err != nil {
			return traffic.Config{}, err
		}
		var cfg traffic.Config
		if err := json.Unmarshal(data, &cfg); err != nil {
			return traffic.Config{}, fmt.Errorf("%w: traffic config %s: %v", repro.ErrBadQuery, cfgPath, err)
		}
		return cfg, cfg.Validate()
	}
	var arr traffic.ArrivalSpec
	switch arrival {
	case "poisson":
		arr = traffic.ArrivalSpec{Kind: traffic.ArrivalPoisson, Rate: rate}
	case "diurnal":
		// A compressed day: a quiet phase, a peak at twice the mean, and a
		// shoulder back at the mean.
		arr = traffic.ArrivalSpec{Kind: traffic.ArrivalDiurnal, Phases: []traffic.Phase{
			{Span: 200 * time.Millisecond, Rate: rate / 4},
			{Span: 100 * time.Millisecond, Rate: 2 * rate},
			{Span: 200 * time.Millisecond, Rate: rate},
		}}
	case "burst":
		// On/off with a 4x in-burst rate and a 25% duty cycle, preserving
		// the mean.
		arr = traffic.ArrivalSpec{Kind: traffic.ArrivalBurst, Rate: 4 * rate,
			OnSpan: 50 * time.Millisecond, OffSpan: 150 * time.Millisecond}
	default:
		return traffic.Config{}, fmt.Errorf("%w: unknown -traffic-arrival %q (poisson|diurnal|burst)", repro.ErrBadQuery, arrival)
	}
	return traffic.Config{
		Seed:        seed,
		MaxRequests: n,
		Cohorts: []traffic.Cohort{
			{Name: "users", Arrival: arr, Population: traffic.Population{Kind: traffic.PopZipfRepeat}},
			{Name: "crawlers",
				Arrival:    traffic.ArrivalSpec{Kind: traffic.ArrivalPoisson, Rate: rate / 4},
				Population: traffic.Population{Kind: traffic.PopCrawler}},
		},
	}, nil
}

// replayTraceFile replays the trace at `in` against db and prints the
// open-loop report. When `out` is non-empty the replayed stream is
// re-recorded there, so `diff in out` checks the round-trip externally.
func replayTraceFile(db *repro.Database, in, out string, opts repro.ReplayOptions) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	reqs, err := traffic.Replay(f)
	f.Close()
	if err != nil {
		return err
	}
	rep, err := repro.ReplayTrace(db, reqs, opts)
	if err != nil {
		return err
	}
	if out != "" {
		if err := os.WriteFile(out, traffic.RecordBytes(reqs), 0o644); err != nil {
			return err
		}
	}
	engine := fmt.Sprintf("shared-scan batches of %d", replayBatchSize(opts))
	if opts.Shards > 0 {
		engine = fmt.Sprintf("sharded stack, P=%d", opts.Shards)
	}
	fmt.Printf("replayed %d requests from %s against N=%d, m=%d (%s)\n",
		len(reqs), in, db.N(), db.M(), engine)
	fmt.Printf("errors: %d/%d\n", rep.Errors, len(reqs))
	printQuantiles("queue", rep.Queue)
	printQuantiles("service", rep.Service)
	fmt.Printf("charged cost: %.6g total", rep.Charged)
	if n := len(reqs) - rep.Errors; n > 0 {
		fmt.Printf(" (%.6g per request)", rep.Charged/float64(n))
	}
	fmt.Println()
	return nil
}

func replayBatchSize(opts repro.ReplayOptions) int {
	if opts.Batch > 0 {
		return opts.Batch
	}
	return 8
}

func printQuantiles(name string, q repro.LatencyQuantiles) {
	fmt.Printf("%-8s p50 %-10v p90 %-10v p99 %-10v max %v\n", name+":",
		q.P50.Round(time.Microsecond), q.P90.Round(time.Microsecond),
		q.P99.Round(time.Microsecond), q.Max.Round(time.Microsecond))
}
