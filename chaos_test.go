package repro_test

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro"
	"repro/internal/workload"
)

// chaosWorkloads is the battery the chaos properties run over: every grade
// distribution the workload package generates, small enough to keep the
// full matrix fast under -race.
func chaosWorkloads(t *testing.T) map[string]*repro.Database {
	t.Helper()
	out := map[string]*repro.Database{}
	add := func(name string, db *repro.Database, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		out[name] = db
	}
	spec := func(seed int64) workload.Spec { return workload.Spec{N: 240, M: 3, Seed: seed} }
	db, err := workload.IndependentUniform(spec(41))
	add("uniform", db, err)
	db, err = workload.Correlated(spec(42), 0.05)
	add("correlated", db, err)
	db, err = workload.AntiCorrelated(spec(43), 0.05)
	add("anticorrelated", db, err)
	db, err = workload.Zipf(spec(44), 2.0)
	add("zipf", db, err)
	db, err = workload.Plateau(spec(45), 6)
	add("plateau", db, err)
	db, err = workload.DistinctUniform(spec(46))
	add("distinct", db, err)
	return out
}

// gradeMultiset reduces an answer to its sorted grade multiset: the
// tie-safe equality notion. Two runs that break a grade tie toward
// different objects are both canonical answers, so object identity is not
// comparable — the grades are.
func gradeMultiset(db *repro.Database, tf repro.AggFunc, res *repro.Result) []float64 {
	out := make([]float64, 0, len(res.Items))
	for _, it := range res.Items {
		out = append(out, float64(tf.Apply(db.Grades(it.Object))))
	}
	sort.Float64s(out)
	return out
}

func sameMultiset(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

// chaosModes is every execution mode the fault injector supports, spanning
// the sequential algorithms and the sharded engine at P ∈ {1, 4}.
var chaosModes = []struct {
	name string
	opts repro.Options
}{
	{"ta", repro.Options{}},
	{"nra", repro.Options{NoRandomAccess: true}},
	{"ca", repro.Options{Algorithm: repro.AlgoCA}},
	{"sharded-ta-p1", repro.Options{Shards: 1}},
	{"sharded-ta-p4", repro.Options{Shards: 4}},
	{"sharded-nra-p4", repro.Options{Shards: 4, NoRandomAccess: true}},
	{"sharded-nra-cost-aware-p4", repro.Options{
		Shards: 4, NoRandomAccess: true, Schedule: repro.ScheduleCostAware,
	}},
}

// TestChaosTransientFaultsExactAnswers: transient faults are invisible in
// the answer. With retries enabled, a run under a fault rate plus burst
// outages must produce the same grade multiset as the fault-free run, in
// every mode, on every workload — and must actually have hit faults.
func TestChaosTransientFaultsExactAnswers(t *testing.T) {
	const k = 10
	tf := repro.Avg(3)
	fault := &repro.FaultSpec{Rate: 0.05, BurstEvery: 300, BurstLen: 6, Seed: 7}
	// A burst stalls retries for its whole length, so the policy must
	// outlast BurstLen consecutive failures to ride out an outage window.
	retry := repro.Retry{MaxAttempts: fault.BurstLen + 2, Budget: 4096}
	for name, db := range chaosWorkloads(t) {
		for _, mode := range chaosModes {
			t.Run(name+"/"+mode.name, func(t *testing.T) {
				clean, err := repro.Query(db, tf, k, mode.opts)
				if err != nil {
					t.Fatalf("fault-free: %v", err)
				}
				opts := mode.opts
				opts.Fault = fault
				opts.Retry = retry
				res, err := repro.Query(db, tf, k, opts)
				if err != nil {
					t.Fatalf("faulty: %v", err)
				}
				if res.Stats.Faults == 0 {
					t.Fatal("fault injector never fired — the run proves nothing")
				}
				if res.Stats.Retries < res.Stats.Faults {
					t.Fatalf("%d faults but only %d retries", res.Stats.Faults, res.Stats.Retries)
				}
				if !res.GradesExact && !mode.opts.NoRandomAccess {
					t.Fatal("transient faults degraded a random-access answer")
				}
				if res.Theta != clean.Theta {
					t.Fatalf("θ drifted under transient faults: %g vs %g", res.Theta, clean.Theta)
				}
				got, want := gradeMultiset(db, tf, res), gradeMultiset(db, tf, clean)
				if !sameMultiset(got, want) {
					t.Fatalf("answer changed under transient faults:\n got %v\nwant %v", got, want)
				}
			})
		}
	}
}

// TestChaosShardLossSoundTheta: losing a shard permanently must still
// produce an answer, and its certified θ must satisfy the paper's
// Section 6.2 condition against the full database: θ·t(y) ≥ t(z) for every
// answer y and non-answer z.
func TestChaosShardLossSoundTheta(t *testing.T) {
	const k, p = 8, 4
	tf := repro.Avg(3)
	for name, db := range chaosWorkloads(t) {
		for _, noRandom := range []bool{false, true} {
			mode := "ta"
			if noRandom {
				mode = "nra"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				res, err := repro.Query(db, tf, k, repro.Options{
					Shards:         p,
					NoRandomAccess: noRandom,
					Fault:          &repro.FaultSpec{DeadList: 1, Seed: 9},
					Retry:          repro.Retry{MaxAttempts: 2},
				})
				if err != nil {
					t.Fatalf("degraded query failed: %v", err)
				}
				if res.GradesExact || res.Theta < 1 || res.Stats.DeadShards != 1 {
					t.Fatalf("degradation contract broken: exact=%v θ=%g dead=%d",
						res.GradesExact, res.Theta, res.Stats.DeadShards)
				}
				// θ soundness against ground truth.
				answers := make(map[repro.ObjectID]bool, k)
				worst := math.Inf(1)
				for _, it := range res.Items {
					answers[it.Object] = true
					if g := float64(tf.Apply(db.Grades(it.Object))); g < worst {
						worst = g
					}
				}
				for _, obj := range db.Objects() {
					if answers[obj] {
						continue
					}
					if z := float64(tf.Apply(db.Grades(obj))); res.Theta*worst < z-1e-12 {
						t.Fatalf("θ=%g unsound: worst answer %g vs non-answer %g", res.Theta, worst, z)
					}
				}
				// MinTheta: a generous floor accepts the same degraded run;
				// a floor below the certified θ rejects with ErrBackend.
				opts := repro.Options{
					Shards:         p,
					NoRandomAccess: noRandom,
					Fault:          &repro.FaultSpec{DeadList: 1, Seed: 9},
					Retry:          repro.Retry{MaxAttempts: 2},
					MinTheta:       res.Theta + 1,
				}
				if _, err := repro.Query(db, tf, k, opts); err != nil {
					t.Fatalf("MinTheta %g rejected certified θ=%g: %v", opts.MinTheta, res.Theta, err)
				}
				if res.Theta > 1 {
					opts.MinTheta = 1
					_, err := repro.Query(db, tf, k, opts)
					if !errors.Is(err, repro.ErrBackend) {
						t.Fatalf("MinTheta 1 vs θ=%g: want ErrBackend, got %v", res.Theta, err)
					}
					if errors.Is(err, repro.ErrBadQuery) {
						t.Fatal("a too-weak answer is a backend failure, not a bad query")
					}
				}
			})
		}
	}
}

// TestChaosFaultSpecValidation pins the option-combination rules of the
// fault layer at the public surface.
func TestChaosFaultSpecValidation(t *testing.T) {
	db := sampleDB(t)
	tf := repro.Avg(3)
	bad := []repro.Options{
		{Fault: &repro.FaultSpec{Rate: 1.5}},
		{Fault: &repro.FaultSpec{Rate: -0.1}},
		{Fault: &repro.FaultSpec{BurstEvery: -1}},
		{Fault: &repro.FaultSpec{DeadList: 99}},                 // only 3 lists
		{Fault: &repro.FaultSpec{}, Algorithm: repro.AlgoFA},    // infallible scan
		{Fault: &repro.FaultSpec{}, Algorithm: repro.AlgoNaive}, // infallible scan
		{MinTheta: 1.5}, // sequential path cannot degrade
		{Hedge: true},   // hedging needs the sharded serialized schedule
		{Shards: 2, MinTheta: 0.5},
		{Shards: 2, Hedge: true},
	}
	for i, opts := range bad {
		if _, err := repro.Query(db, tf, 2, opts); !errors.Is(err, repro.ErrBadQuery) {
			t.Fatalf("case %d (%+v): want ErrBadQuery, got %v", i, opts, err)
		}
	}
	// Hedge is accepted exactly on the sharded serialized NRA schedule.
	res, err := repro.Query(db, tf, 2, repro.Options{
		Shards: 2, NoRandomAccess: true, Schedule: repro.ScheduleCostAware, Hedge: true,
	})
	if err != nil {
		t.Fatalf("hedged sharded query: %v", err)
	}
	if res.Stats.DeadShards != 0 || res.Theta != 1 {
		t.Fatalf("fault-free hedged run degraded: %+v", res.Stats)
	}
}

// TestChaosBatchRejectsFault: the batch executor shares one scan across
// queries, which a per-query fault plan cannot compose with — the spec is
// rejected up front as a bad query, and ParallelQueries (per-query
// cursors) accepts the same spec.
func TestChaosBatchRejectsFault(t *testing.T) {
	db := sampleDB(t)
	spec := repro.QuerySpec{Agg: repro.Avg(3), K: 1,
		Opts: repro.Options{Fault: &repro.FaultSpec{Rate: 0.1, Seed: 3}}}
	br := repro.BatchQuery(db, []repro.QuerySpec{spec}, 0)
	if err := br.Outcomes[0].Err; !errors.Is(err, repro.ErrBadQuery) {
		t.Fatalf("batch: want ErrBadQuery, got %v", err)
	}
	outs := repro.ParallelQueries(db, []repro.QuerySpec{spec}, 0)
	if outs[0].Err != nil {
		t.Fatalf("parallel: %v", outs[0].Err)
	}
	if outs[0].Result.Items[0].Object != 1 {
		t.Fatalf("parallel faulty answer: %v", outs[0].Result.Items)
	}
}
