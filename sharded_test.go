package repro_test

import (
	"errors"
	"math"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/workload"
)

// shardedWorkloads are the equality workloads for the sharded engine.
func shardedWorkloads(t *testing.T) map[string]*repro.Database {
	t.Helper()
	out := make(map[string]*repro.Database)
	add := func(name string, db *repro.Database, err error) {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		out[name] = db
	}
	db, err := workload.IndependentUniform(workload.Spec{N: 400, M: 3, Seed: 31})
	add("uniform", db, err)
	db, err = workload.Correlated(workload.Spec{N: 400, M: 3, Seed: 32}, 0.05)
	add("correlated", db, err)
	db, err = workload.Zipf(workload.Spec{N: 400, M: 3, Seed: 33}, 2.5)
	add("zipf", db, err)
	return out
}

// TestShardedQueryMatchesSequential is the top-level equality check the
// sharded engine must pass: identical top-k items (objects and grades;
// ties broken by ObjectID) and the same exactness guarantee as the
// sequential run, across Min/Sum/Product and several shard counts.
func TestShardedQueryMatchesSequential(t *testing.T) {
	for name, db := range shardedWorkloads(t) {
		for _, tf := range []repro.AggFunc{repro.Min(3), repro.Sum(3), repro.Product(3)} {
			seq, err := repro.Query(db, tf, 10, repro.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4, 8} {
				res, err := repro.Query(db, tf, 10, repro.Options{Shards: shards, ShardWorkers: 4})
				if err != nil {
					t.Fatalf("%s/%s/shards=%d: %v", name, tf.Name(), shards, err)
				}
				if res.Theta != seq.Theta {
					t.Fatalf("%s/%s/shards=%d: Theta %v, want %v", name, tf.Name(), shards, res.Theta, seq.Theta)
				}
				if !res.GradesExact {
					t.Fatalf("%s/%s/shards=%d: grades not exact", name, tf.Name(), shards)
				}
				if len(res.Items) != len(seq.Items) {
					t.Fatalf("%s/%s/shards=%d: %d items, want %d", name, tf.Name(), shards, len(res.Items), len(seq.Items))
				}
				for i := range res.Items {
					if res.Items[i].Object != seq.Items[i].Object || res.Items[i].Grade != seq.Items[i].Grade {
						t.Fatalf("%s/%s/shards=%d item %d: (%d, %v), want (%d, %v)", name, tf.Name(), shards, i,
							res.Items[i].Object, res.Items[i].Grade, seq.Items[i].Object, seq.Items[i].Grade)
					}
				}
			}
		}
	}
}

// TestNewShardedHandleReuse checks the partition-once handle answers many
// queries identically to fresh Options.Shards queries.
func TestNewShardedHandleReuse(t *testing.T) {
	db, err := workload.IndependentUniform(workload.Spec{N: 300, M: 3, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewSharded(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", eng.Shards())
	}
	for _, tf := range []repro.AggFunc{repro.Avg(3), repro.Min(3)} {
		want, err := repro.Query(db, tf, 5, repro.Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Query(tf, 5, repro.ShardOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Items {
			if got.Items[i] != want.Items[i] {
				t.Fatalf("%s item %d: %+v, want %+v", tf.Name(), i, got.Items[i], want.Items[i])
			}
		}
	}
}

// TestShardedOptionCompatibility checks that option combinations the
// sharded engine cannot honor are rejected up front — every rejection
// carrying the repro.ErrBadQuery identity — while TA and NRA sharding
// (including NoRandomAccess composed with Shards) are accepted.
func TestShardedOptionCompatibility(t *testing.T) {
	db := sampleDB(t)
	bad := []repro.Options{
		{Shards: 2, Algorithm: repro.AlgoFA},
		{Shards: 2, Algorithm: repro.AlgoCA},
		{Shards: 2, Algorithm: repro.AlgoTA, NoRandomAccess: true}, // TA cannot run without random access
		{Shards: 2, Theta: 1.5},
		{Shards: 2, Theta: 0.5}, // invalid θ must not slip through sharded
		{Shards: 2, SortedLists: []int{0}},
		{Shards: 2, OnProgress: func(repro.ProgressView) bool { return true }},
		{Shards: 2, Costs: repro.CostModel{CS: -1, CR: 1}},
		{Shards: -3}, // negative shard counts are rejected
	}
	for i, opts := range bad {
		_, err := repro.Query(db, repro.Min(3), 1, opts)
		if err == nil {
			t.Errorf("options %d (%+v) accepted", i, opts)
			continue
		}
		if !errors.Is(err, repro.ErrBadQuery) {
			t.Errorf("options %d rejection %q does not wrap repro.ErrBadQuery", i, err)
		}
	}
	// Shards = 0 is the plain sequential path, whatever the options.
	res, err := repro.Query(db, repro.Avg(3), 1, repro.Options{Algorithm: repro.AlgoNRA, NoRandomAccess: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items[0].Object != 1 {
		t.Fatalf("top object %d, want 1", res.Items[0].Object)
	}
	// TA explicit + memoize + workers cap + single shard are supported.
	if _, err := repro.Query(db, repro.Avg(3), 2, repro.Options{
		Shards: 2, ShardWorkers: 1, Algorithm: repro.AlgoTA, Memoize: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.Query(db, repro.Avg(3), 2, repro.Options{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	// NoRandomAccess (and the explicit AlgoNRA spelling) now composes
	// with Shards instead of erroring, and really does no random access.
	for _, opts := range []repro.Options{
		{Shards: 2, NoRandomAccess: true},
		{Shards: 2, Algorithm: repro.AlgoNRA},
		{Shards: 1, Algorithm: repro.AlgoNRA, NoRandomAccess: true},
	} {
		res, err := repro.Query(db, repro.Avg(3), 2, opts)
		if err != nil {
			t.Fatalf("NRA sharding options %+v rejected: %v", opts, err)
		}
		if res.Stats.Random != 0 {
			t.Fatalf("NRA sharding options %+v made %d random accesses", opts, res.Stats.Random)
		}
	}
}

// TestShardedNRAQueryMatchesUnsharded is the public-API equality check for
// the no-random-access sharded mode: on every workload — including the
// tie-heavy Zipf one — the answer's true-grade multiset must match
// unsharded NRA's for every shard count, the run must do zero random
// accesses, and on continuous workloads (unique top-k) the object sets
// must be identical.
func TestShardedNRAQueryMatchesUnsharded(t *testing.T) {
	for name, db := range shardedWorkloads(t) {
		for _, tf := range []repro.AggFunc{repro.Min(3), repro.Sum(3)} {
			seq, err := repro.Query(db, tf, 10, repro.Options{NoRandomAccess: true})
			if err != nil {
				t.Fatal(err)
			}
			want := core.TrueGradeMultiset(db, tf, seq.Items)
			for _, shards := range []int{1, 2, 4, 8} {
				res, err := repro.Query(db, tf, 10, repro.Options{
					NoRandomAccess: true, Shards: shards, ShardWorkers: 4,
				})
				if err != nil {
					t.Fatalf("%s/%s/shards=%d: %v", name, tf.Name(), shards, err)
				}
				if res.Stats.Random != 0 {
					t.Fatalf("%s/%s/shards=%d: %d random accesses", name, tf.Name(), shards, res.Stats.Random)
				}
				got := core.TrueGradeMultiset(db, tf, res.Items)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s/shards=%d: grade multiset %v, want %v", name, tf.Name(), shards, got, want)
					}
				}
				if name == "uniform" || name == "correlated" {
					// Continuous grades: the top-k set is unique, so the
					// object sets must agree exactly.
					seqSet := map[repro.ObjectID]bool{}
					for _, it := range seq.Items {
						seqSet[it.Object] = true
					}
					for _, it := range res.Items {
						if !seqSet[it.Object] {
							t.Fatalf("%s/%s/shards=%d: object %d not in unsharded answer %v",
								name, tf.Name(), shards, it.Object, seq.Objects())
						}
					}
				}
			}
		}
	}
}

// TestNRAOnProgressHook checks the cancellable run hook on NRA: the
// callback sees every round and returning false stops the run early
// without an exactness claim.
func TestNRAOnProgressHook(t *testing.T) {
	db, err := workload.IndependentUniform(workload.Spec{N: 300, M: 3, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	res, err := repro.Query(db, repro.Avg(3), 5, repro.Options{
		NoRandomAccess: true,
		OnProgress: func(p repro.ProgressView) bool {
			rounds++
			return rounds < 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("callback ran %d times, want 3", rounds)
	}
	if res.Stats.Random != 0 {
		t.Fatalf("NRA made %d random accesses", res.Stats.Random)
	}
	if !math.IsInf(res.Theta, 1) {
		t.Fatalf("early-stopped NRA claims guarantee θ=%v, want +Inf", res.Theta)
	}
	// A full (uncancelled) run still certifies itself.
	full, err := repro.Query(db, repro.Avg(3), 5, repro.Options{NoRandomAccess: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Theta != 1 {
		t.Fatalf("full NRA run Theta = %v, want 1", full.Theta)
	}
}

// TestStrictStopTA checks the canonical tie handling behind the sharded
// engine: on a database whose kth grade ties an unseen object, StrictStop
// keeps reading until the canonical winner (smallest ObjectID among the
// tied) is found.
func TestStrictStopTA(t *testing.T) {
	// Ties everywhere: k=1 under Min; objects 0..3 all have overall 0.5.
	b := repro.NewBuilder(2)
	b.MustAdd(0, 0.5, 0.5)
	b.MustAdd(1, 0.5, 0.5)
	b.MustAdd(2, 0.5, 0.5)
	b.MustAdd(3, 0.5, 0.5)
	db := b.MustBuild()
	res, err := repro.Query(db, repro.Min(2), 2, repro.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items[0].Object != 0 || res.Items[1].Object != 1 {
		t.Fatalf("canonical top-2 = %v, want [0 1]", res.Objects())
	}
	if res.Items[0].Grade != 0.5 || res.Items[1].Grade != 0.5 {
		t.Fatalf("grades %v/%v, want 0.5", res.Items[0].Grade, res.Items[1].Grade)
	}
}
