package repro_test

import (
	"fmt"

	"repro"
)

// exampleDB builds a small deterministic database: 6 objects, 2
// attributes, no ties among the top grades.
func exampleDB() *repro.Database {
	b := repro.NewBuilder(2)
	b.MustAdd(1, 0.9, 0.8)
	b.MustAdd(2, 0.8, 0.7)
	b.MustAdd(3, 0.6, 0.9)
	b.MustAdd(4, 0.4, 0.5)
	b.MustAdd(5, 0.3, 0.2)
	b.MustAdd(6, 0.1, 0.6)
	return b.MustBuild()
}

// ExampleNewShardedStack builds a persistent sharded engine whose lists
// sit behind simulated remote backends (declared costs cS=1, cR=4) and a
// per-shard cache shared across queries: the repeated query is served
// from cache and charged less than the first.
func ExampleNewShardedStack() {
	db := exampleDB()
	eng, err := repro.NewShardedStack(db, 2,
		&repro.BackendSpec{SortedCost: 1, RandomCost: 4},
		&repro.CacheSpec{})
	if err != nil {
		panic(err)
	}
	first, err := eng.Query(repro.Min(2), 2, repro.ShardOptions{Workers: 1})
	if err != nil {
		panic(err)
	}
	second, err := eng.Query(repro.Min(2), 2, repro.ShardOptions{Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("top-2 under min: object %d (%.2g), object %d (%.2g)\n",
		first.Items[0].Object, float64(first.Items[0].Grade),
		first.Items[1].Object, float64(first.Items[1].Grade))
	fmt.Printf("repeat query cheaper through the shared cache: %v\n",
		second.Stats.Charged() < first.Stats.Charged())
	// Output:
	// top-2 under min: object 1 (0.8), object 2 (0.7)
	// repeat query cheaper through the shared cache: true
}

// ExampleBatchQuery runs a batch of queries over one shared physical scan
// per list: per-query results and accounting are identical to independent
// runs, while the database sees each list scanned once.
func ExampleBatchQuery() {
	db := exampleDB()
	specs := []repro.QuerySpec{
		{Agg: repro.Min(2), K: 1},
		{Agg: repro.Avg(2), K: 1},
	}
	br := repro.BatchQuery(db, specs, 2)
	for i, oc := range br.Outcomes {
		if oc.Err != nil {
			panic(oc.Err)
		}
		fmt.Printf("query %d: object %d (%.2g)\n",
			i, oc.Result.Items[0].Object, float64(oc.Result.Items[0].Grade))
	}
	// Output:
	// query 0: object 1 (0.8)
	// query 1: object 1 (0.85)
}

// ExampleQuery_costAwareTA asks for exact top-k grades at CA's exchange
// rate: with random access declared 8× the price of sorted, cost-aware TA
// spends one resolution phase every h = 8 sorted rounds instead of
// resolving every encountered object, and still reports exact grades.
func ExampleQuery_costAwareTA() {
	db := exampleDB()
	res, err := repro.Query(db, repro.Min(2), 1, repro.Options{
		CostAwareTA: true,
		Costs:       repro.CostModel{CS: 1, CR: 8},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("top-1: object %d, grade %.2g, exact: %v\n",
		res.Items[0].Object, float64(res.Items[0].Grade), res.GradesExact)
	// Output:
	// top-1: object 1, grade 0.8, exact: true
}
